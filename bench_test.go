// Package vcache's root benchmark harness regenerates every measured
// artifact of the paper as a Go benchmark, one family per table or
// figure (see DESIGN.md's per-experiment index):
//
//	BenchmarkTable1  — old vs new kernel on the three benchmarks
//	BenchmarkTable4  — the six-configuration sweep
//	BenchmarkTable5  — the five-system comparison on the torture workload
//	BenchmarkAliasMicro — the Section 2.5 aligned/unaligned write loop
//	BenchmarkVariants — the Section 3.3 architecture variants
//	BenchmarkFastPurge — the Section 5.1 single-cycle-purge what-if
//	BenchmarkAblation* — the design-choice ablations listed in DESIGN.md
//
// Simulated time, flush counts, and purge counts are emitted as custom
// metrics (sim-sec/op, flushes/op, purges/op); wall-clock ns/op measures
// only how fast the simulator itself runs.
package vcache

import (
	"fmt"
	"runtime"
	"testing"

	"vcache/internal/cache"
	"vcache/internal/harness"
	"vcache/internal/kernel"
	"vcache/internal/policy"
	"vcache/internal/sim"
	"vcache/internal/workload"
)

// benchScale keeps full-table runs inside a sane benchmark budget while
// preserving every effect (frame recycling still occurs at this scale).
var benchScale = workload.Scale{Name: "bench", Factor: 0.3}

// runWorkload runs w under cfg once per iteration (one harness Spec per
// run) and reports the simulated metrics of the last run.
func runWorkload(b *testing.B, w workload.Workload, cfg policy.Config, kcfg kernel.Config) workload.Result {
	b.Helper()
	var last workload.Result
	for i := 0; i < b.N; i++ {
		r, _, err := harness.Exec(harness.Spec{Workload: w, Config: cfg, Scale: benchScale, Kernel: &kcfg})
		if err != nil {
			b.Fatal(err)
		}
		if err := r.CheckClean(); err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Seconds, "sim-sec/op")
	b.ReportMetric(float64(last.PM.DFlushPages), "flushes/op")
	b.ReportMetric(float64(last.PM.DPurgePages+last.PM.IPurgePages), "purges/op")
	b.ReportMetric(float64(last.PM.ConsistencyFaults), "consfaults/op")
	return last
}

// BenchmarkMatrixFanout measures the harness itself: the full Table 4
// plan (3 benchmarks × 6 configurations) submitted serially (j1) and
// with full fan-out (jN for N = GOMAXPROCS). On a multicore machine the
// jN case should approach linear speedup; wall-clock ns/op is the
// metric of interest.
func BenchmarkMatrixFanout(b *testing.B) {
	scale := workload.Scale{Name: "bench", Factor: 0.15}
	plan := harness.Matrix(workload.Benchmarks(), policy.Configs(), scale)
	widths := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		widths = append(widths, n)
	}
	for _, workers := range widths {
		workers := workers
		b.Run(fmt.Sprintf("j%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.Results(harness.Run(plan, workers)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(plan)), "runs/op")
		})
	}
}

func defaultKC(cfg policy.Config) kernel.Config { return kernel.DefaultConfig(cfg) }

// BenchmarkTable1 regenerates Table 1: the three benchmarks under the
// old (A) and new (F) systems.
func BenchmarkTable1(b *testing.B) {
	for _, w := range workload.Benchmarks() {
		for _, cfg := range []policy.Config{policy.Old(), policy.New()} {
			name := w.Name + "/"
			if cfg.Label == "A" {
				name += "old"
			} else {
				name += "new"
			}
			w, cfg := w, cfg
			b.Run(name, func(b *testing.B) {
				runWorkload(b, w, cfg, defaultKC(cfg))
			})
		}
	}
}

// BenchmarkTable4 regenerates Table 4: each benchmark under each of the
// six cumulative configurations.
func BenchmarkTable4(b *testing.B) {
	for _, w := range workload.Benchmarks() {
		for _, cfg := range policy.Configs() {
			w, cfg := w, cfg
			b.Run(w.Name+"/"+cfg.Label, func(b *testing.B) {
				runWorkload(b, w, cfg, defaultKC(cfg))
			})
		}
	}
}

// BenchmarkTable5 regenerates Table 5's measured column: the five
// systems on the randomized torture workload.
func BenchmarkTable5(b *testing.B) {
	for _, cfg := range policy.Table5Systems() {
		cfg := cfg
		b.Run(cfg.Label, func(b *testing.B) {
			runWorkload(b, workload.Stress(42, 500), cfg, defaultKC(cfg))
		})
	}
}

// BenchmarkAliasMicro regenerates the Section 2.5 microbenchmark: a
// write loop over two mappings of one physical page, aligned vs not.
func BenchmarkAliasMicro(b *testing.B) {
	const writes = 50000
	for _, aligned := range []bool{true, false} {
		aligned := aligned
		name := "aligned"
		if !aligned {
			name = "unaligned"
		}
		b.Run(name, func(b *testing.B) {
			var last workload.AliasMicroResult
			for i := 0; i < b.N; i++ {
				r, err := workload.RunAliasMicro(policy.New(), writes, aligned)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.Seconds, "sim-sec/op")
			b.ReportMetric(float64(last.Faults), "faults/op")
		})
	}
}

// BenchmarkVariants exercises the Section 3.3 architecture variants —
// write-through data cache, physically indexed data cache, and a
// two-way set-associative cache — under the full workload stress, with
// the oracle proving consistency holds in each.
func BenchmarkVariants(b *testing.B) {
	variants := []struct {
		name string
		mut  func(*kernel.Config)
	}{
		{"write-back-VI", func(c *kernel.Config) {}},
		{"write-through-VI", func(c *kernel.Config) { c.Machine.DCachePolicy = cache.WriteThrough }},
		{"write-back-PI", func(c *kernel.Config) { c.Machine.DCacheIndexing = cache.PhysicalIndex }},
		{"2-way-VI", func(c *kernel.Config) { c.Machine.DCacheWays = 2 }},
		{"2-cpu-SMP", func(c *kernel.Config) { c.Machine.CPUs = 2 }},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			cfg := policy.New()
			kc := defaultKC(cfg)
			v.mut(&kc)
			runWorkload(b, workload.KernelBuild(), cfg, kc)
		})
	}
}

// BenchmarkFastPurge measures the Section 5.1 what-if: configuration F
// with the HP 720 timing vs. an architecture providing a single-cycle
// page purge.
func BenchmarkFastPurge(b *testing.B) {
	for _, fast := range []bool{false, true} {
		fast := fast
		name := "hp720-purge"
		if fast {
			name = "single-cycle-purge"
		}
		b.Run(name, func(b *testing.B) {
			cfg := policy.New()
			kc := defaultKC(cfg)
			if fast {
				kc.Machine.Timing = sim.FastPurgeTiming()
			}
			runWorkload(b, workload.KernelBuild(), cfg, kc)
		})
	}
}

// ablationPair benches a workload under two configurations differing in
// exactly one feature.
func ablationPair(b *testing.B, w workload.Workload, off, on policy.Config) {
	b.Helper()
	b.Run("without", func(b *testing.B) { runWorkload(b, w, off, defaultKC(off)) })
	b.Run("with", func(b *testing.B) { runWorkload(b, w, on, defaultKC(on)) })
}

// BenchmarkAblationLazy isolates lazy unmap (A vs B).
func BenchmarkAblationLazy(b *testing.B) {
	ablationPair(b, workload.KernelBuild(), policy.ConfigA(), policy.ConfigB())
}

// BenchmarkAblationAlign isolates aligned address selection (B vs C).
func BenchmarkAblationAlign(b *testing.B) {
	ablationPair(b, workload.KernelBuild(), policy.ConfigB(), policy.ConfigC())
}

// BenchmarkAblationPrepare isolates aligned page preparation (C vs D).
func BenchmarkAblationPrepare(b *testing.B) {
	ablationPair(b, workload.KernelBuild(), policy.ConfigC(), policy.ConfigD())
}

// BenchmarkAblationSemantics isolates the need_data and will_overwrite
// semantic hints (D vs F).
func BenchmarkAblationSemantics(b *testing.B) {
	ablationPair(b, workload.KernelBuild(), policy.ConfigD(), policy.ConfigF())
}

// BenchmarkAblationICachePurge isolates the 720 artifact the paper
// notes in Section 5: the instruction cache purges in constant time
// regardless of contents, so lazy unmap cannot shave I-purge cost the
// way it shaves D-purge cost. "with" = per-line I-purge hardware.
func BenchmarkAblationICachePurge(b *testing.B) {
	cfg := policy.New()
	b.Run("constant-time", func(b *testing.B) {
		runWorkload(b, workload.KernelBuild(), cfg, defaultKC(cfg))
	})
	b.Run("per-line", func(b *testing.B) {
		kc := defaultKC(cfg)
		kc.Machine.ICachePerLinePurge = true
		runWorkload(b, workload.KernelBuild(), cfg, kc)
	})
}

// BenchmarkAblationColoredFreeList isolates the Section 5.1 extension
// the paper proposes: multiple (per-color) free page lists on top of
// configuration F.
func BenchmarkAblationColoredFreeList(b *testing.B) {
	off := policy.ConfigF()
	on := policy.ConfigF()
	on.Label, on.Name = "F+", "+colored free lists"
	on.Features.ColoredFreeList = true
	ablationPair(b, workload.KernelBuild(), off, on)
}

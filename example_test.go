package vcache_test

import (
	"fmt"

	"vcache"
)

// ExampleNewSystem boots a simulated HP 9000/720 under the paper's full
// consistency policy and drives a process through an unaligned-alias
// sharing pattern; the oracle confirms no stale value was ever
// delivered.
func ExampleNewSystem() {
	sys, err := vcache.NewSystem(vcache.PolicyNew())
	if err != nil {
		panic(err)
	}
	k := sys.Kernel()
	p, err := k.Spawn(nil, 0, 8)
	if err != nil {
		panic(err)
	}
	if err := k.TouchHeap(p, 0, 32); err != nil {
		panic(err)
	}
	if err := k.ReadHeap(p, 0, 32); err != nil {
		panic(err)
	}
	k.Exit(p)
	fmt.Println("stale transfers:", sys.Violations())
	// Output: stale transfers: 0
}

// ExampleRunAliasMicro reproduces the paper's Section 2.5 observation:
// writes through an unaligned alias pair are vastly more expensive than
// through an aligned pair.
func ExampleRunAliasMicro() {
	aligned, _ := vcache.RunAliasMicro(vcache.PolicyNew(), 10000, true)
	unaligned, _ := vcache.RunAliasMicro(vcache.PolicyNew(), 10000, false)
	fmt.Println("aligned needed cache ops:", aligned.DFlushes+aligned.DPurges > 100)
	fmt.Println("unaligned needed cache ops:", unaligned.DFlushes+unaligned.DPurges > 100)
	// Output:
	// aligned needed cache ops: false
	// unaligned needed cache ops: true
}

// ExamplePolicies lists the paper's cumulative configurations.
func ExamplePolicies() {
	for _, p := range vcache.Policies() {
		fmt.Printf("%s: %s\n", p.Label, p.Name)
	}
	// Output:
	// A: old (eager, unaligned)
	// B: +lazy unmap
	// C: +align pages
	// D: +aligned prepare
	// E: +need data
	// F: +will overwrite
}

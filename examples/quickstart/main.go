// Quickstart: what goes wrong in a virtually indexed write-back cache,
// and how the consistency model fixes it.
//
// Part 1 drives the raw simulated hardware with no operating system:
// one physical page mapped at two unaligned virtual addresses, writes
// through one and reads through the other. The oracle catches the stale
// transfers the hardware happily performs.
//
// Part 2 runs the same sharing pattern under the full kernel with the
// paper's consistency algorithm (configuration F): every read sees
// fresh data, and the stats show the flushes, purges, and consistency
// faults that made it so.
package main

import (
	"fmt"
	"log"

	"vcache/internal/arch"
	"vcache/internal/kernel"
	"vcache/internal/machine"
	"vcache/internal/policy"
	"vcache/internal/tlb"
	"vcache/internal/vm"
)

// identityWalker maps every virtual page to the same-numbered physical
// frame, read-write, with no modify traps — hardware translation with no
// operating system behind it.
type identityWalker struct{ geom arch.Geometry }

func (w identityWalker) Walk(space arch.SpaceID, vpn arch.VPN) (tlb.Entry, bool) {
	// Alias: two distinct virtual pages backed by frame 1.
	return tlb.Entry{PFN: 1, Prot: arch.ProtReadWrite}, true
}

func main() {
	part1()
	part2()
}

func part1() {
	fmt.Println("=== Part 1: the hardware alone cannot keep aliases consistent ===")
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m.SetWalker(identityWalker{geom: m.Geom})

	// Two virtual addresses, both mapped to frame 1, selecting
	// *different* cache lines (unaligned: the page numbers differ by
	// one, so their cache colors differ).
	va1 := m.Geom.PageBase(0x100) // color 0
	va2 := m.Geom.PageBase(0x101) // color 1

	if err := m.Write(0, va1, 0xAAAA); err != nil {
		log.Fatal(err)
	}
	v, err := m.Read(0, va2) // fetches the stale value from memory
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote 0xAAAA through va1, read %#x through unaligned alias va2\n", v)
	for _, viol := range m.Oracle.Violations() {
		fmt.Printf("oracle: %v\n", viol)
	}
	fmt.Println()
}

func part2() {
	fmt.Println("=== Part 2: the same sharing under the consistency algorithm ===")
	k, err := kernel.New(kernel.DefaultConfig(policy.New()))
	if err != nil {
		log.Fatal(err)
	}
	p, err := k.Spawn(nil, 0, 4)
	if err != nil {
		log.Fatal(err)
	}
	geom := k.Geometry()

	// Map one physical page at two unaligned virtual addresses of the
	// same process — the worst case for a virtually indexed cache.
	obj := k.VM.NewObject()
	r1, err := k.VM.MapObject(p.Space, obj, 0, 1, 0x40000, arch.NoCachePage, arch.ProtReadWrite, false, vm.KindShared)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := k.VM.MapObject(p.Space, obj, 0, 1, 0x40041, arch.NoCachePage, arch.ProtReadWrite, false, vm.KindShared)
	if err != nil {
		log.Fatal(err)
	}
	va1, va2 := geom.PageBase(r1.Start), geom.PageBase(r2.Start)
	fmt.Printf("aliases at colors %d and %d (unaligned)\n",
		geom.DCachePageOf(va1), geom.DCachePageOf(va2))

	for i := 0; i < 5; i++ {
		if err := k.M.Write(p.Space.ID, va1, uint64(0x1000+i)); err != nil {
			log.Fatal(err)
		}
		v, err := k.M.Read(p.Space.ID, va2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("iteration %d: wrote %#x via va1, read %#x via va2\n", i, 0x1000+i, v)
	}

	s := k.PM.Stats()
	fmt.Printf("\nconsistency management performed:\n")
	fmt.Printf("  consistency faults: %d\n", s.ConsistencyFaults)
	fmt.Printf("  dcache flushes:     %d\n", s.DFlushPages)
	fmt.Printf("  dcache purges:      %d\n", s.DPurgePages)
	fmt.Printf("oracle: %d transfers checked, %d stale\n",
		k.M.Oracle.Checks(), len(k.M.Oracle.Violations()))
	if len(k.M.Oracle.Violations()) == 0 {
		fmt.Println("every read saw the most recently written value")
	}
}

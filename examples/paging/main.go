// Paging: the default pager under memory pressure.
//
// A process touches a working set three times larger than physical
// memory. The page stealer evicts pages to the swap device — each
// pageout is a DMA-read (dirty cached data flushed first so the device
// sees current bytes), each pagein a DMA-write (cached data purged so it
// cannot shadow the device's data) — and every word read back is
// verified against the oracle's shadow memory.
package main

import (
	"fmt"
	"log"

	"vcache/internal/kernel"
	"vcache/internal/policy"
)

func main() {
	cfg := kernel.DefaultConfig(policy.New())
	cfg.Machine.Frames = 192 // ~0.75 MiB: pressure guaranteed
	cfg.FS.Buffers = 32
	k, err := kernel.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	const pages = 400
	p, err := k.Spawn(nil, 0, pages)
	if err != nil {
		log.Fatal(err)
	}
	geom := k.Geometry()

	fmt.Printf("physical memory: %d frames; working set: %d pages\n\n", cfg.Machine.Frames, pages)

	// Write a distinct value into every page.
	for pg := uint64(0); pg < pages; pg++ {
		if err := k.M.Write(p.Space.ID, p.HeapVA(geom, pg, 1), 0xD00D<<16|pg); err != nil {
			log.Fatal(err)
		}
	}
	po, si, _ := k.VM.SwapStats()
	fmt.Printf("after writing:  pageouts=%4d swapins=%4d swap disk writes=%d\n", po, si, k.Swap.Stats().Writes)

	// Read everything back — most pages must come back from swap.
	for pg := uint64(0); pg < pages; pg++ {
		v, err := k.M.Read(p.Space.ID, p.HeapVA(geom, pg, 1))
		if err != nil {
			log.Fatal(err)
		}
		if v != 0xD00D<<16|pg {
			log.Fatalf("page %d read %#x", pg, v)
		}
	}
	po, si, _ = k.VM.SwapStats()
	fmt.Printf("after reading:  pageouts=%4d swapins=%4d swap disk reads=%d\n", po, si, k.Swap.Stats().Reads)

	s := k.PM.Stats()
	fmt.Printf("\nconsistency work for the paging traffic:\n")
	fmt.Printf("  DMA-read flushes (pageout):  %d\n", s.DMAReadFlushes)
	fmt.Printf("  DMA-write purges (pagein):   %d\n", s.DMAWritePurges)
	fmt.Printf("  consistency faults:          %d\n", s.ConsistencyFaults)
	fmt.Printf("\noracle: %d transfers checked, %d stale — every page survived its\n",
		k.M.Oracle.Checks(), len(k.M.Oracle.Violations()))
	fmt.Println("round trips through the non-snooping swap device intact.")
	if len(k.M.Oracle.Violations()) != 0 {
		log.Fatal("stale transfer observed")
	}
}

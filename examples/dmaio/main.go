// Dmaio: driver-style DMA I/O through the buffer cache and the
// demand-paging path.
//
// DMA devices on the simulated machine (as on the HP 9000 Series 700)
// do not snoop the cache: before a disk write the kernel must flush
// dirty cached data so the device reads current bytes, and before a disk
// read it must make sure stale cached data cannot shadow or clobber the
// device's new data. This example writes a file (write-behind to disk),
// reads it back through the buffer cache, then overwrites the same user
// page by direct DMA — showing the DMA-read flushes, DMA-write purges,
// and the consistency faults that follow on the next CPU access.
package main

import (
	"fmt"
	"log"

	"vcache/internal/kernel"
	"vcache/internal/policy"
)

func main() {
	k, err := kernel.New(kernel.DefaultConfig(policy.New()))
	if err != nil {
		log.Fatal(err)
	}
	p, err := k.Spawn(nil, 0, 8)
	if err != nil {
		log.Fatal(err)
	}

	snap := func(label string) {
		s := k.PM.Stats()
		d := k.Disk.Stats()
		fmt.Printf("%-34s dma-read-flushes=%2d dma-write-purges=%2d disk-reads=%2d disk-writes=%2d consistency-faults=%d\n",
			label, s.DMAReadFlushes, s.DMAWritePurges, d.Reads, d.Writes, s.ConsistencyFaults)
	}

	// 1. Create a file and write four pages; the data sits dirty in
	//    buffer-cache pages until write-behind pushes it to disk.
	f, err := k.CreateFile(p, "data/log")
	if err != nil {
		log.Fatal(err)
	}
	for pg := uint64(0); pg < 4; pg++ {
		if err := k.TouchHeap(p, pg, 512); err != nil {
			log.Fatal(err)
		}
		if err := k.WriteFilePage(p, f, pg, pg); err != nil {
			log.Fatal(err)
		}
	}
	snap("after buffered writes")

	// 2. Sync: each dirty buffer is flushed from the cache (DMA-read
	//    preparation) and written to disk.
	if err := k.FS.Sync(); err != nil {
		log.Fatal(err)
	}
	snap("after sync (DMA-reads)")

	// 3. Read the pages back through the buffer cache (they are still
	//    resident, so no disk access), then by direct DMA into a dirty
	//    user page — the DMA-write path that purges the user page's
	//    cached data and leaves the mappings stale.
	if err := k.ReadFilePage(p, f, 0, 5); err != nil {
		log.Fatal(err)
	}
	snap("after buffered re-read")

	if err := k.TouchHeap(p, 6, 512); err != nil { // dirty the page first
		log.Fatal(err)
	}
	if err := k.ReadFilePageDirect(p, f, 1, 6); err != nil {
		log.Fatal(err)
	}
	snap("after direct DMA read into page")

	// 4. The CPU now reads the freshly DMA-written page: the stale
	//    cached copy must be purged first (a consistency fault).
	if err := k.ReadHeap(p, 6, 64); err != nil {
		log.Fatal(err)
	}
	snap("after CPU reads the DMA data")

	if n := len(k.M.Oracle.Violations()); n != 0 {
		log.Fatalf("%d stale transfers!", n)
	}
	fmt.Printf("\noracle: %d transfers checked, all fresh — the device and the CPU\n", k.M.Oracle.Checks())
	fmt.Println("always saw the most recent data despite the non-snooping DMA engine.")
}

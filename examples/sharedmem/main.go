// Sharedmem: the Unix-server scenario — two address spaces exchanging
// requests and responses over a shared page.
//
// The example runs the same transaction loop twice: once with the
// shared page at caller-fixed, unaligned addresses (the original Mach
// Unix server), and once with kernel-chosen, aligned addresses (the
// paper's fix, configuration C's "+align pages"). It prints the cycles
// and consistency operations per transaction for both, reproducing the
// motivation for Section 4.2's "Shared pages in the Unix server".
package main

import (
	"fmt"
	"log"

	"vcache/internal/kernel"
	"vcache/internal/policy"
)

func run(cfg policy.Config, transactions int) {
	k, err := kernel.New(kernel.DefaultConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	p, err := k.Spawn(nil, 0, 4)
	if err != nil {
		log.Fatal(err)
	}
	// Warm up the channel, then measure steady state.
	if err := k.Syscall(p); err != nil {
		log.Fatal(err)
	}
	k.M.Clock.Reset()
	k.M.ResetStats()
	k.PM.ResetStats()

	for i := 0; i < transactions; i++ {
		if err := k.Syscall(p); err != nil {
			log.Fatal(err)
		}
	}
	s := k.PM.Stats()
	srv := k.Server.Stats()
	fmt.Printf("%-28s aligned-channels=%d/%d  cycles/txn=%5d  consistency-faults/txn=%.1f  flushes=%d purges=%d\n",
		cfg.Name, srv.AlignedChannels, srv.Attaches,
		k.M.Clock.Cycles()/uint64(transactions),
		float64(s.ConsistencyFaults)/float64(transactions),
		s.DFlushPages, s.DPurgePages)
	if n := len(k.M.Oracle.Violations()); n != 0 {
		log.Fatalf("%d stale transfers!", n)
	}
}

func main() {
	const transactions = 500
	fmt.Printf("%d server transactions over one shared page:\n\n", transactions)
	// Configuration B: fixed (unaligned) channel addresses, lazy
	// consistency. Configuration C adds kernel-chosen aligned ones.
	run(policy.ConfigB(), transactions)
	run(policy.ConfigC(), transactions)
	fmt.Println("\nAligning the shared page eliminates the per-transaction cache")
	fmt.Println("management entirely — the two mappings land on the same cache page,")
	fmt.Println("and the physically tagged cache resolves them without any software help.")
}

// Cowfork: copy-on-write fork under lazy consistency management.
//
// Fork shares the parent's heap copy-on-write. The child's first write
// to a shared page takes a fault; the kernel copies the page through
// preparation windows — and with the paper's optimizations the copy is
// prepared *aligned* with the child's mapping (no flush afterwards), the
// dead data in the recycled destination frame is purged rather than
// flushed (need_data), and the purge itself is skipped because the copy
// overwrites the whole page (will_overwrite).
//
// The example runs the same fork/write pattern under configuration A
// (eager, unaligned) and configuration F (all optimizations) and prints
// the page-preparation work each performed.
package main

import (
	"fmt"
	"log"

	"vcache/internal/kernel"
	"vcache/internal/policy"
)

func run(cfg policy.Config) {
	k, err := kernel.New(kernel.DefaultConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	parent, err := k.Spawn(nil, 0, 16)
	if err != nil {
		log.Fatal(err)
	}
	// Parent populates its heap.
	for pg := uint64(0); pg < 8; pg++ {
		if err := k.TouchHeap(parent, pg, 256); err != nil {
			log.Fatal(err)
		}
	}
	k.M.Clock.Reset()
	k.PM.ResetStats()

	child, err := k.Fork(parent)
	if err != nil {
		log.Fatal(err)
	}
	// Child reads shared pages (no copies)...
	for pg := uint64(0); pg < 8; pg++ {
		if err := k.ReadHeap(child, pg, 64); err != nil {
			log.Fatal(err)
		}
	}
	// ...then writes half of them (copy-on-write).
	for pg := uint64(0); pg < 4; pg++ {
		if err := k.TouchHeap(child, pg, 64); err != nil {
			log.Fatal(err)
		}
	}
	// Parent still sees its own data.
	for pg := uint64(0); pg < 8; pg++ {
		if err := k.ReadHeap(parent, pg, 64); err != nil {
			log.Fatal(err)
		}
	}
	k.Exit(child)

	s := k.PM.Stats()
	fmt.Printf("%-28s cow-copies=%d flushes=%d purges=%d consistency-faults=%d cycles=%d\n",
		cfg.Label+" "+cfg.Name, k.VM.Stats().COWCopies,
		s.DFlushPages, s.DPurgePages, s.ConsistencyFaults, k.M.Clock.Cycles())
	if n := len(k.M.Oracle.Violations()); n != 0 {
		log.Fatalf("%d stale transfers!", n)
	}
}

func main() {
	fmt.Println("fork + copy-on-write under two consistency policies:")
	fmt.Println()
	run(policy.ConfigA())
	run(policy.ConfigF())
	fmt.Println("\nBoth are correct (the oracle checked every transfer); the full model")
	fmt.Println("does the same copies with a fraction of the cache management.")
}
